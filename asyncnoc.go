// Package asyncnoc is a simulation and analysis library for lightweight
// multicast in asynchronous Networks-on-Chip using local speculation,
// reproducing Bhardwaj & Nowick, DAC 2016.
//
// The library models an n x n variant Mesh-of-Trees (MoT) asynchronous
// NoC with two-phase bundled-data handshaking at flit granularity. Six
// network architectures are provided:
//
//   - Baseline: the unicast-only network of Horak et al. [21]; multicast
//     is expanded into serial unicasts.
//   - BasicNonSpeculative: simple tree-based parallel multicast.
//   - BasicHybridSpeculative: local speculation — a speculative root
//     level that always broadcasts, surrounded by non-speculative nodes
//     that throttle redundant copies.
//   - OptHybridSpeculative: the hybrid with power-optimized speculative
//     nodes and performance-optimized (channel pre-allocating)
//     non-speculative nodes.
//   - OptNonSpeculative / OptAllSpeculative: the zero- and maximum-
//     speculation extremes of the design space.
//
// Node timing and area come from gate-level netlists of all six switch
// designs (see internal/netlist), analyzed against a 45 nm-calibrated
// cell library; the energy model charges every handshake event to
// regenerate the paper's total network power.
//
// Quick start:
//
//	spec := asyncnoc.OptHybridSpeculative(8)
//	res, err := asyncnoc.Run(spec, asyncnoc.RunConfig{
//	        Bench:   asyncnoc.UniformRandom(8),
//	        LoadGFs: 0.4,
//	        Seed:    1,
//	        Warmup:  320 * asyncnoc.Nanosecond,
//	        Measure: 3200 * asyncnoc.Nanosecond,
//	        Drain:   800 * asyncnoc.Nanosecond,
//	})
//
// All randomness is seeded; equal configurations reproduce results
// exactly.
package asyncnoc

import (
	"context"
	"fmt"
	"io"

	"asyncnoc/internal/chiplet"
	"asyncnoc/internal/core"
	"asyncnoc/internal/fault"
	"asyncnoc/internal/mesh"
	"asyncnoc/internal/netlist"
	"asyncnoc/internal/network"
	"asyncnoc/internal/obs"
	"asyncnoc/internal/packet"
	"asyncnoc/internal/rng"
	"asyncnoc/internal/routing"
	"asyncnoc/internal/service"
	"asyncnoc/internal/sim"
	"asyncnoc/internal/stats"
	"asyncnoc/internal/store"
	"asyncnoc/internal/timing"
	"asyncnoc/internal/topology"
	"asyncnoc/internal/traffic"
)

// Time re-exports the picosecond simulation timestamp.
type Time = sim.Time

// Time units for configuring windows.
const (
	Picosecond  = sim.Picosecond
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
)

// NetworkSpec describes one network architecture instance.
type NetworkSpec = network.Spec

// Network is a built simulation instance (exposed for instrumented runs).
type Network = network.Network

// TraceEvent is an observable simulation event (inject, forward,
// throttle, deliver) for instrumented runs.
type TraceEvent = network.TraceEvent

// Trace event kinds.
const (
	TraceInject     = network.TraceInject
	TraceForward    = network.TraceForward
	TraceThrottle   = network.TraceThrottle
	TraceDeliver    = network.TraceDeliver
	TraceRetransmit = network.TraceRetransmit
	TraceDrop       = network.TraceDrop
)

// RunConfig parameterizes one simulation run.
type RunConfig = core.RunConfig

// DefaultRunConfig returns the paper's standard setup for an n-terminal
// network: uniform random traffic at 0.4 GFs per source with the
// Section 5.1 windows (320 ns warmup, 3200 ns measure, 800 ns drain)
// and seed 1. Override individual fields before running.
func DefaultRunConfig(n int) RunConfig { return core.DefaultRunConfig(n) }

// ConfigError reports every invalid RunConfig field at once; its Fields
// list one entry per problem, so callers assembling configurations from
// flags or files see the whole repair list in one round trip.
type ConfigError = core.ConfigError

// FieldError names one invalid RunConfig field and the reason.
type FieldError = core.FieldError

// Instrument observes one simulation run: Attach hooks it onto the built
// network before any event runs, Finish flushes it after the run.
// Instruments ride along in RunConfig.Instruments through every run entry
// point (Run, RunContext, Engine runs, RunSeeds, ...). Instrumented runs
// are always executed fresh — never served from the engine's result memo —
// so the instruments observe a real simulation. Each instrument instance
// should be used for a single run.
type Instrument = core.Instrument

// VCDInstrument dumps handshake activity as an IEEE 1364 Value Change
// Dump into Out; after the run its Rec field holds the recorder.
type VCDInstrument = network.VCDInstrument

// UtilizationInstrument collects per-level fanout activity counters;
// after the run its U field holds the populated Utilization.
type UtilizationInstrument = network.UtilizationInstrument

// TraceInstrument streams flit-lifecycle events as deterministic JSONL
// into Out; after the run its Sink field exposes the event count.
type TraceInstrument = obs.TraceInstrument

// ShardStatsInstrument captures the shard group's window/barrier
// counters from one sharded run (motsim -shard-stats); after the run
// its Stats method returns them.
type ShardStatsInstrument = core.ShardStatsInstrument

// ShardStats holds a sharded run's window/barrier diagnostics.
type ShardStats = sim.ShardStats

// RunResult carries one run's measurements.
type RunResult = core.RunResult

// SatConfig parameterizes a saturation-throughput search.
type SatConfig = core.SatConfig

// SatResult carries a saturation search outcome.
type SatResult = core.SatResult

// Benchmark generates destination sets for injected packets.
type Benchmark = traffic.Benchmark

// DestSet is a destination bitmask (bit d == destination d addressed).
type DestSet = packet.DestSet

// Dests builds a destination set from indices.
func Dests(ds ...int) DestSet { return packet.Dests(ds...) }

// ParseDests parses and validates a comma-separated destination list
// ("0,3,5") against an n-terminal network: entries must be integers in
// [0, n) with no duplicates, and the set must not be empty.
func ParseDests(s string, n int) (DestSet, error) { return packet.ParseDestSet(s, n) }

// FixedDests returns a benchmark that sends every packet to one fixed
// destination set (the motsim -dests workload).
func FixedDests(n int, set DestSet) Benchmark { return traffic.Fixed{N: n, Set: set} }

// StrategyNames lists the registered multicast routing strategies in
// reporting order.
func StrategyNames() []string { return routing.StrategyNames() }

// WithStrategy rebuilds a spec to plan injections under the named
// routing strategy (see StrategyNames); the reporting name gains a
// "+strategy" suffix. An empty name keeps the architecture's default.
func WithStrategy(s NetworkSpec, strategy string) NetworkSpec {
	return core.WithStrategy(s, strategy)
}

// Rand is the deterministic random source handed to Benchmark
// implementations; custom traffic patterns implement Benchmark with it.
type Rand = rng.Source

// CustomHybrid returns a hybrid network with an explicit per-level
// speculation vector (root level first; the last level must be
// non-speculative), using the optimized node designs. This opens the
// wider design space the paper describes for larger MoTs (Fig. 3(d)).
func CustomHybrid(n int, specLevels []bool) NetworkSpec {
	s := core.OptHybridSpeculative(n)
	s.Name = fmt.Sprintf("Custom[%s]", levelString(specLevels))
	s.SpecLevels = append([]bool(nil), specLevels...)
	return s
}

func levelString(levels []bool) string {
	out := make([]byte, len(levels))
	for i, s := range levels {
		if s {
			out[i] = 'S'
		} else {
			out[i] = 'N'
		}
	}
	return string(out)
}

// Network constructors (Section 5.1 of the paper). n is the MoT radix
// (a power of two in [2, 64]; the paper evaluates 8).
var (
	// Baseline is the serial-multicast unicast network [21].
	Baseline = core.Baseline
	// BasicNonSpeculative is simple tree-based parallel multicast.
	BasicNonSpeculative = core.BasicNonSpeculative
	// BasicHybridSpeculative applies local speculation with
	// unoptimized nodes.
	BasicHybridSpeculative = core.BasicHybridSpeculative
	// OptHybridSpeculative adds the protocol optimizations.
	OptHybridSpeculative = core.OptHybridSpeculative
	// OptNonSpeculative is the optimized zero-speculation design point.
	OptNonSpeculative = core.OptNonSpeculative
	// OptAllSpeculative is the almost fully speculative extreme.
	OptAllSpeculative = core.OptAllSpeculative
)

// AllNetworks returns the six architectures in reporting order.
func AllNetworks(n int) []NetworkSpec { return core.AllSpecs(n) }

// WithFourPhase returns the spec rebuilt on four-phase (RZ) handshaking
// instead of the paper's two-phase (NRZ) signaling — the protocol
// alternative Section 2 argues against. Useful for ablations.
func WithFourPhase(s NetworkSpec) NetworkSpec {
	s.Protocol = timing.FourPhase
	s.Name += "(4-phase)"
	return s
}

// WithSynchronous derives the clocked comparison point of an
// architecture: same topology and nodes, quantized to a worst-case-path
// clock with clock-tree power charged — the paper's async-vs-sync
// motivation made measurable.
func WithSynchronous(s NetworkSpec) NetworkSpec { return core.Synchronous(s) }

// NetworkByName resolves a reporting name (e.g. "OptHybridSpeculative").
func NetworkByName(n int, name string) (NetworkSpec, error) { return core.SpecByName(n, name) }

// Benchmark constructors (Section 5.1).
func UniformRandom(n int) Benchmark { return traffic.UniformRandom{N: n} }

// Shuffle returns the bit-permutation benchmark.
func Shuffle(n int) Benchmark { return traffic.Shuffle{N: n} }

// Hotspot returns the single-hot-destination benchmark.
func Hotspot(n, hot int) Benchmark { return traffic.Hotspot{N: n, Hot: hot} }

// MulticastFraction returns a mixed benchmark injecting multicast packets
// (random destination subsets) at the given rate; 0.05 and 0.10 are the
// paper's Multicast5 and Multicast10.
func MulticastFraction(n int, frac float64) Benchmark { return traffic.Multicast{N: n, Frac: frac} }

// MulticastStatic returns the benchmark where the first `sources` sources
// send only multicast and the rest uniform random unicast.
func MulticastStatic(n, sources int) Benchmark {
	return traffic.MulticastStatic{N: n, Sources: sources}
}

// Benchmarks returns the paper's six benchmarks in reporting order.
func Benchmarks(n int) []Benchmark { return traffic.StandardSuite(n) }

// BenchmarkByName resolves a benchmark reporting name.
func BenchmarkByName(n int, name string) (Benchmark, error) { return traffic.ByName(n, name) }

// Run executes one simulation and returns its measurements. Protocol
// violations inside the model surface as *ProtocolError; a wedged or
// runaway simulation aborts with *DeadlockError or *LivelockError.
func Run(spec NetworkSpec, cfg RunConfig) (RunResult, error) { return core.Run(spec, cfg) }

// RunContext is Run with cancellation: the simulation checks ctx between
// event batches and aborts with ctx.Err() once it is done.
func RunContext(ctx context.Context, spec NetworkSpec, cfg RunConfig) (RunResult, error) {
	return core.RunContext(ctx, spec, cfg)
}

// FaultConfig attaches a deterministic fault schedule (transient payload
// corruption, body-flit drops, stuck channels, handshake jitter) and the
// end-to-end recovery protocol's parameters to a NetworkSpec via its
// Faults field. The zero value disables the fault layer entirely; with
// any fault source enabled, the network interfaces run a CRC-checked
// retransmission protocol with capped exponential backoff. All fault
// randomness flows from FaultConfig.Seed, so runs stay bit-reproducible.
type FaultConfig = fault.Config

// StuckChannel wedges one fanout output channel permanently after a
// configured number of delivered flits (FaultConfig.Stuck entries).
type StuckChannel = fault.Stuck

// FaultStats carries a run's fault-injection and recovery counters.
type FaultStats = fault.Stats

// StuckFlit locates one flit wedged in the network fabric (the deadlock
// watchdog's diagnostic unit).
type StuckFlit = network.StuckFlit

// ProtocolError reports an asynchronous-protocol violation recovered at
// the run boundary (a model inconsistency, not a workload failure).
type ProtocolError = core.ProtocolError

// DeadlockError reports a run that quiesced with flits still wedged in
// the fabric; its Stuck field locates every one of them.
type DeadlockError = core.DeadlockError

// LivelockError reports a run that exceeded its event budget
// (RunConfig.MaxEvents) before reaching the end of simulated time.
type LivelockError = core.LivelockError

// PanicError reports a panic recovered from an engine worker; the
// poisoned job fails alone without killing the pool.
type PanicError = core.PanicError

// Engine is the parallel experiment engine: a bounded worker pool with a
// keyed LRU result memo. Every simulation is a pure function of
// (spec, config), so the engine fans independent runs out across
// workers, deduplicates equal runs, and always returns results in job
// order — outputs are bit-identical to serial execution. Saturation,
// LoadSweep, and RunSeeds have Engine methods of the same shapes; the
// package-level functions use a shared default engine sized by the
// ASYNCNOC_WORKERS environment variable (default GOMAXPROCS).
type Engine = core.Engine

// Job is one engine work unit: a single simulation run.
type Job = core.Job

// NewEngine returns an engine with the given worker-pool size;
// workers <= 0 selects DefaultWorkers().
func NewEngine(workers int) *Engine { return core.NewEngine(workers) }

// DefaultWorkers resolves the default pool size: ASYNCNOC_WORKERS if set
// to a positive integer, otherwise GOMAXPROCS.
func DefaultWorkers() int { return core.DefaultWorkers() }

// ShardsEnv is the environment variable consulted by DefaultShards.
const ShardsEnv = core.ShardsEnv

// DefaultShards resolves the default per-run shard count
// (RunConfig.Shards): ASYNCNOC_SHARDS if set to a positive integer,
// otherwise 1 — the engine already parallelizes across runs, so
// intra-run sharding is opt-in.
func DefaultShards() int { return core.DefaultShards() }

// JobKey returns the canonical hash of a (spec, config) pair; equal keys
// identify runs that are deterministic replays of each other.
func JobKey(spec NetworkSpec, cfg RunConfig) string { return core.JobKey(spec, cfg) }

// Build constructs an instrumentable network with injection processes
// armed and windows set; drive it with nw.Sched and extract measurements
// with Collect.
func Build(spec NetworkSpec, cfg RunConfig) (*Network, error) { return core.Build(spec, cfg) }

// NewNetwork constructs a bare network instance with no traffic
// processes: inject packets explicitly with nw.Inject and drive the
// simulation with nw.Sched (single-packet walk-throughs, custom
// harnesses).
func NewNetwork(spec NetworkSpec) (*Network, error) { return network.New(spec) }

// VCDRecorder dumps handshake activity as an IEEE 1364 Value Change Dump.
type VCDRecorder = network.VCDRecorder

// Collect extracts measurements from a finished instrumented run.
func Collect(nw *Network, cfg RunConfig) RunResult { return core.Collect(nw, cfg) }

// Saturation searches for the saturation throughput of one network under
// one benchmark (Table 1).
func Saturation(spec NetworkSpec, cfg SatConfig) (SatResult, error) {
	return core.Saturation(spec, cfg)
}

// MeshSpec describes a 2D-mesh network — the paper's future-work
// topology, simulated with the same handshake-level machinery.
type MeshSpec = mesh.Spec

// MeshTree returns a w x h mesh with XY tree-based multicast.
func MeshTree(w, h int) MeshSpec {
	return MeshSpec{Name: fmt.Sprintf("Mesh%dx%dTree", w, h), W: w, H: h, PacketLen: core.DefaultPacketLen}
}

// MeshSerial returns a w x h mesh expanding multicast into serial XY
// unicasts (the baseline scheme on the alternative topology).
func MeshSerial(w, h int) MeshSpec {
	return MeshSpec{Name: fmt.Sprintf("Mesh%dx%dSerial", w, h), W: w, H: h, PacketLen: core.DefaultPacketLen, Serial: true}
}

// RunMesh executes one mesh simulation under the same configuration
// contract as Run; the benchmark's destination space must equal w*h.
func RunMesh(spec MeshSpec, cfg RunConfig) (RunResult, error) { return mesh.Run(spec, cfg) }

// MeshSaturation searches for a mesh's saturation throughput under the
// same latency-divergence criterion as Saturation.
func MeshSaturation(spec MeshSpec, cfg SatConfig) (SatResult, error) {
	return mesh.Saturation(spec, cfg)
}

// TopologySpec is the unified construction contract every network
// description implements: NetworkSpec (a single MoT die or a chiplet
// composition of dies) and MeshSpec (the 2D-mesh substrate). It exposes
// the shared geometry and partitioning surface — terminal count,
// canonical memo key, shard limits — so harnesses accept any topology
// through one parameter.
type TopologySpec = topology.TopologySpec

// ChipletParams describes the interposer of a mesh-of-MoT-chiplets
// composition: W x H dies on a NoI mesh, with die-to-die channels
// either serial (SerialFactor beats per flit) or flit-parallel, and
// their own per-beat delay and energy constants.
type ChipletParams = chiplet.Params

// ChipletSerial returns a w x h interposer with serialized (narrow)
// die-to-die channels — the default off-chip assumption.
func ChipletSerial(w, h int) *ChipletParams { return chiplet.Default(w, h) }

// ChipletParallel returns a w x h interposer with full-width die-to-die
// channels (one beat per flit).
func ChipletParallel(w, h int) *ChipletParams { return chiplet.Parallel(w, h) }

// WithChiplet composes a single-die architecture into a mesh of
// identical dies behind the given interposer; the reporting name gains
// an "@WxHofN" suffix. A nil p returns the spec unchanged.
func WithChiplet(s NetworkSpec, p *ChipletParams) NetworkSpec { return core.WithChiplet(s, p) }

// ChipletBenchmarkByName resolves a hierarchical benchmark (one local
// destination mask per die) by reporting name: UniformRandom,
// Multicast5, or Multicast10 over the composed destination space.
func ChipletBenchmarkByName(p *ChipletParams, dieN int, name string) (Benchmark, error) {
	return chiplet.ByName(p, dieN, name)
}

// RunTopology executes one simulation over the unified TopologySpec
// surface, dispatching to the matching engine: Run for NetworkSpec
// (single-die or chiplet-composed), RunMesh for MeshSpec.
func RunTopology(ts TopologySpec, cfg RunConfig) (RunResult, error) {
	switch s := ts.(type) {
	case NetworkSpec:
		return core.Run(s, cfg)
	case MeshSpec:
		return mesh.Run(s, cfg)
	default:
		return RunResult{}, fmt.Errorf("asyncnoc: unsupported topology spec %T", ts)
	}
}

// Injection is one entry of an explicit traffic schedule.
type Injection = core.Injection

// Schedule is a time-ordered workload for replay runs.
type Schedule = core.Schedule

// RunSchedule replays an explicit workload through a network and measures
// every injected packet.
func RunSchedule(spec NetworkSpec, sched Schedule, drain Time) (RunResult, error) {
	return core.RunSchedule(spec, sched, drain)
}

// RunScheduleShards is RunSchedule with the replay partitioned across
// the given number of scheduler shards; results are byte-identical at
// any count (see RunConfig.Shards).
func RunScheduleShards(spec NetworkSpec, sched Schedule, drain Time, shards int) (RunResult, error) {
	return core.RunScheduleShards(spec, sched, drain, shards)
}

// Replicated aggregates one configuration over several seeds.
type Replicated = core.Replicated

// RunSeeds executes the configuration once per seed and aggregates mean
// and standard deviation of the reported metrics.
func RunSeeds(spec NetworkSpec, cfg RunConfig, seeds []uint64) (Replicated, error) {
	return core.RunSeeds(spec, cfg, seeds)
}

// Utilization holds per-level fanout activity counters; it quantifies how
// local the speculation waste stays (the paper's "small local regions").
type Utilization = network.Utilization

// TraceSink streams a network's flit-lifecycle events as deterministic
// JSON Lines (one object per event, fixed field order); for a fixed
// (spec, config) the byte stream is identical across runs and across
// engine worker-pool sizes.
type TraceSink = obs.TraceSink

// ValidateTrace schema-checks a JSONL trace stream and returns the number
// of events validated.
func ValidateTrace(r io.Reader) (int, error) { return obs.ValidateTrace(r) }

// LatencySummary is a sort-once descriptive summary (mean, stddev,
// percentiles, histogram) of a sample set.
type LatencySummary = stats.Summary

// NewLatencySummary builds a summary of the samples (typically
// latencies in ns); the input is copied, not retained.
func NewLatencySummary(samples []float64) *LatencySummary { return stats.NewSummary(samples) }

// Monitor is a live observability endpoint (expvar counters at
// /debug/vars, pprof at /debug/pprof/) for long sweeps.
type Monitor = obs.Monitor

// SweepProgress tracks job completion and extrapolates an ETA for the
// monitoring endpoint and CLI progress lines.
type SweepProgress = obs.Progress

// NewSweepProgress starts tracking a sweep of total jobs.
func NewSweepProgress(total int) *SweepProgress { return obs.NewProgress(total) }

// StartMonitor serves the monitoring endpoint on addr (":0" picks a free
// port; see Monitor.Addr). engine and progress may be nil.
func StartMonitor(addr string, engine *Engine, progress *SweepProgress) (*Monitor, error) {
	return obs.StartMonitor(addr, engine, progress)
}

// EngineSnapshot is one sample of an engine's live progress counters.
type EngineSnapshot = core.EngineSnapshot

// StartCPUProfile begins a CPU profile into path; call the returned stop
// function when done.
func StartCPUProfile(path string) (stop func() error, err error) {
	return obs.StartCPUProfile(path)
}

// WriteHeapProfile snapshots the heap into path (after a GC).
func WriteHeapProfile(path string) error { return obs.WriteHeapProfile(path) }

// ResultStore is the persistent layer an Engine consults behind its
// in-memory memo: a durable, checksum-verified map from job key to
// RunResult shared across processes.
type ResultStore = core.ResultStore

// StoreStats carries a persistent store's health counters (hits,
// misses, corrupt entries healed, writes, write errors).
type StoreStats = core.StoreStats

// Store is the file-backed ResultStore: one file per SHA-256 job key,
// written atomically (temp + fsync + rename) with a CRC-32C frame, so
// a crash mid-write can never corrupt a served result — a torn or
// bit-rotted entry is detected on read, deleted, and recomputed.
type Store = store.Store

// OpenStore opens (creating if needed) a persistent result store rooted
// at dir and sweeps any temp files a crashed writer left behind. Attach
// it with Engine.SetStore; Close flushes pending write-behind commits.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

// Client wraps the asyncnocd simulation-service API with capped
// exponential backoff + jitter on 429/5xx/transport errors — the NI
// retransmission policy, lifted to the service layer.
type Client = service.Client

// NewServiceClient returns a Client for the asyncnocd server at
// baseURL (e.g. "http://localhost:8080") with the default retry policy.
// Client.Runner adapts it into Engine.SetRemote's delegate; jobs the
// API cannot express or a server that stays unreachable degrade to
// local computation.
func NewServiceClient(baseURL string) *Client { return service.NewClient(baseURL) }

// RunRequest / RunResponse and SweepRequest / SweepResponse are the
// wire shapes of POST /v1/run and POST /v1/sweep.
type (
	RunRequest    = service.RunRequest
	RunResponse   = service.RunResponse
	SweepRequest  = service.SweepRequest
	SweepResponse = service.SweepResponse
)

// CanceledError reports a multi-run search (saturation bisection, load
// sweep) abandoned by its context between iterations; it unwraps to the
// context's error.
type CanceledError = core.CanceledError

// SweepPoint is one point of a latency-versus-offered-load curve.
type SweepPoint = core.SweepPoint

// LoadSweep measures the latency-throughput curve of one network under
// one benchmark on a grid of load fractions up to maxFraction of the
// network's saturation.
func LoadSweep(spec NetworkSpec, base RunConfig, points int, maxFraction float64) ([]SweepPoint, error) {
	return core.LoadSweep(spec, base, points, maxFraction)
}

// NodeCost is one row of the paper's node-level results (Section 5.2(a)),
// regenerated from the gate-level netlists.
type NodeCost struct {
	// Name is the node design name.
	Name string
	// AreaUm2 is the pre-layout standard-cell area.
	AreaUm2 float64
	// ForwardPs is the request-in to request-out critical path.
	ForwardPs int
	// BodyForwardPs is the body-flit forward path (differs only on
	// designs with a fast-forward mechanism).
	BodyForwardPs int
	// Cells is the placed instance count.
	Cells int
}

// NodeCosts analyzes every node netlist and returns the node-level table.
func NodeCosts() ([]NodeCost, error) {
	var out []NodeCost
	for _, name := range netlist.AllNodeNames() {
		nl, err := netlist.Build(name)
		if err != nil {
			return nil, err
		}
		fwd := nl.MustPath(netlist.NetReqIn, netlist.NetReqOut0)
		body := fwd
		if nl.Net(netlist.NetReqOutFast) != nil {
			body = nl.MustPath(netlist.NetReqIn, netlist.NetReqOutFast)
		}
		out = append(out, NodeCost{
			Name:          name,
			AreaUm2:       nl.Area(),
			ForwardPs:     fwd,
			BodyForwardPs: body,
			Cells:         nl.CellCount(),
		})
	}
	return out, nil
}

// FormatLatencyHistogram renders latency samples (ns) as an ASCII
// histogram with `bins` buckets and bars up to barWidth characters.
func FormatLatencyHistogram(samplesNs []float64, bins, barWidth int) string {
	return stats.FormatHistogram(stats.Histogram(samplesNs, bins), barWidth)
}

// DrawPlacement renders the spec's fanout-tree speculation placement as
// ASCII art (speculative nodes marked [S#], addressable ones (N#:f#)).
func DrawPlacement(spec NetworkSpec) (string, error) {
	m, err := topology.New(spec.N)
	if err != nil {
		return "", err
	}
	var pl *topology.Placement
	switch {
	case spec.Serial:
		pl, err = topology.ForScheme(m, topology.NonSpeculative)
	case spec.SpecLevels != nil:
		pl, err = topology.NewPlacement(m, spec.SpecLevels)
	default:
		pl, err = topology.ForScheme(m, spec.Scheme)
	}
	if err != nil {
		return "", err
	}
	return topology.Draw(pl), nil
}

// AddressSizes reports the source-route header widths of every
// architecture for an n x n MoT (Section 5.2(d)).
type AddressSizes = routing.AddressSizes

// AddressSizesFor computes the Section 5.2(d) row for an n x n MoT.
func AddressSizesFor(n int) (AddressSizes, error) { return routing.SizesFor(n) }
