// Command experiments regenerates every table and figure of the paper's
// evaluation section (Section 5) and prints them as text tables:
//
//   - node-level area/latency results (Section 5.2(a))
//   - Fig. 6(a): contribution-trajectory network latency
//   - Fig. 6(b): design-space network latency
//   - Fig. 7: the multicast-scheme shootout across routing strategies
//   - Table 1: saturation throughput and total network power
//   - the addressing-scheme comparison (Section 5.2(d))
//
// Fig. 6(a)/6(b), Fig. 7, and Table 1 carry extra rows for the related-
// work routing strategies (path-based multicast and Dynamic Partition
// Merging), and the addressing comparison their header-cost columns.
//
// With -quick the measurement windows shrink to CI scale (~seconds);
// without it the paper-scale windows run in a few minutes.
//
// Independent simulations run through the shared experiment engine: a
// bounded worker pool (-workers, or the ASYNCNOC_WORKERS environment
// variable; default GOMAXPROCS) with a memo that computes measurement
// points shared between tables only once. Results are consumed in
// deterministic order, so the tables are bit-identical at any pool size.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"asyncnoc"
	"asyncnoc/internal/cliflags"
	"asyncnoc/internal/experiments"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "CI-scale measurement windows")
		seed     = flag.Uint64("seed", 2016, "random seed")
		workers  = cliflags.Workers("simulation")
		shards   = cliflags.Shards()
		topology = cliflags.TopologyFlag()
		sats     = flag.Bool("satloads", false, "also print the raw saturation loads")
		faults   = flag.Bool("faults", false, "also run the fault-injection robustness sweep")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
		n        = cliflags.N()
		util     = flag.Bool("util", false, "also print the per-level fanout utilization table")
		cache    = flag.String("cache-dir", "", "persistent result store directory (shared warm cache)")
		server   = flag.String("server", "", "asyncnocd base URL (e.g. http://localhost:8080); runs execute remotely with local fallback")
		httpAd   = flag.String("http", "", "serve live expvar counters and pprof on this address (e.g. :8090)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	start := time.Now()
	s := experiments.NewSuite(*quick)
	s.N = *n
	s.Seed = *seed
	s.Workers = *workers
	s.Shards = *shards
	if s.Shards == 0 {
		s.Shards = asyncnoc.DefaultShards()
	}

	if *cache != "" {
		st, err := asyncnoc.OpenStore(*cache)
		check(err)
		defer st.Close() //nolint:errcheck // Close only flushes; errors are counted
		s.Engine().SetStore(st)
		fmt.Fprintf(os.Stderr, "store: persistent cache at %s\n", st.Dir())
	}
	if *server != "" {
		s.Engine().SetRemote(asyncnoc.NewServiceClient(*server).Runner())
		fmt.Fprintf(os.Stderr, "server: submitting runs to %s (local fallback on failure)\n", *server)
	}
	if *cpuProf != "" {
		stop, err := asyncnoc.StartCPUProfile(*cpuProf)
		check(err)
		defer stop() //nolint:errcheck
	}
	if *memProf != "" {
		defer func() { check(asyncnoc.WriteHeapProfile(*memProf)) }()
	}
	if *httpAd != "" {
		mon, err := asyncnoc.StartMonitor(*httpAd, s.Engine(), nil)
		check(err)
		defer mon.Close()
		fmt.Fprintf(os.Stderr, "monitor: http://%s/debug/vars\n", mon.Addr())
	}

	emit := func(name string, t *experiments.Table) {
		fmt.Println(t.Format())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				check(err)
			}
		}
	}

	sel, err := cliflags.ParseTopology(*topology)
	check(err)
	switch sel.Kind {
	case "mesh":
		check(fmt.Errorf("the evaluation suite measures MoT networks; -topology mesh:%dx%d is not supported", sel.W, sel.H))
	case "chiplet":
		// Hierarchy-table mode: instead of the paper's single-die tables,
		// measure every architecture composed onto the interposer mesh and
		// break the results out per hierarchy level.
		ct, err := s.ChipletTable(asyncnoc.ChipletSerial(sel.W, sel.H))
		check(err)
		emit("chiplet_hierarchy", ct)
		fmt.Printf("regenerated chiplet experiments in %.1fs\n", time.Since(start).Seconds())
		hits, misses := s.Engine().Stats()
		fmt.Fprintf(os.Stderr, "engine: %d unique simulations, %d memo hits, %d workers\n",
			misses, hits, s.Engine().Workers())
		return
	}

	nodeTable, err := experiments.NodeLevel()
	check(err)
	emit("node_level", nodeTable)

	addr, err := experiments.Addressing()
	check(err)
	emit("addressing", addr)

	fig6a, err := s.Fig6a()
	check(err)
	emit("fig6a_latency", fig6a)

	fig6b, err := s.Fig6b()
	check(err)
	emit("fig6b_latency", fig6b)

	fig7, err := s.Fig7Shootout()
	check(err)
	emit("fig7_shootout", fig7)

	thr, err := s.Table1Throughput()
	check(err)
	emit("table1_throughput", thr)

	pwr, err := s.Table1Power()
	check(err)
	emit("table1_power", pwr)

	if *util {
		ut, err := s.UtilizationTable()
		check(err)
		emit("utilization", ut)
		// Cache health rides along with the utilization diagnostics: the
		// same run that inspects fanout efficiency usually wants to know
		// whether the shared result cache is pulling its weight.
		if snap := s.Engine().Snapshot(); snap.HasStore {
			fmt.Printf("cache health: %d store hits, %d misses, %d corrupt entries healed, %d writes (%d errors), %d evicted\n\n",
				snap.Store.Hits, snap.Store.Misses, snap.Store.Corrupt,
				snap.Store.Writes, snap.Store.WriteErrors, snap.Store.Evictions)
		}
	}

	if *faults {
		sweep, err := s.FaultSweep(nil)
		check(err)
		emit("fault_sweep", sweep)
	}

	if *sats {
		fmt.Println("== saturation loads (diagnostics) ==")
		for _, line := range s.SatLoads() {
			fmt.Println("  " + line)
		}
		fmt.Println()
	}
	fmt.Printf("regenerated all experiments in %.1fs\n", time.Since(start).Seconds())
	hits, misses := s.Engine().Stats()
	fmt.Fprintf(os.Stderr, "engine: %d unique simulations, %d memo hits, %d workers\n",
		misses, hits, s.Engine().Workers())
	if snap := s.Engine().Snapshot(); snap.HasStore {
		fmt.Fprintf(os.Stderr, "store: %d hits, %d misses, %d corrupt healed, %d writes (%d errors)\n",
			snap.Store.Hits, snap.Store.Misses, snap.Store.Corrupt,
			snap.Store.Writes, snap.Store.WriteErrors)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
