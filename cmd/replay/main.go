// Command replay runs an explicit traffic schedule (a recorded or
// hand-crafted workload) through one of the networks and reports the
// measurements of every injected packet.
//
// The schedule is CSV with one injection per line:
//
//	time_ns,src,dest[,dest...]
//	0.0,2,5
//	1.5,0,1,4,6
//
// Example:
//
//	replay -network OptHybridSpeculative -file workload.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"asyncnoc"
	"asyncnoc/internal/cliflags"
)

func main() {
	var (
		networkName = flag.String("network", "OptHybridSpeculative", "network architecture")
		topology    = cliflags.TopologyFlag()
		n           = cliflags.N()
		file        = flag.String("file", "", "CSV schedule file (time_ns,src,dest[,dest...])")
		drain       = flag.Int("drain", 2000, "extra simulated time after the last injection (ns)")
		shards      = cliflags.Shards()
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *file == "" {
		fatal(fmt.Errorf("need -file"))
	}
	// Flat schedules address one die's terminal space; composed and mesh
	// topologies have no schedule format (see core.RunScheduleShards).
	if sel, err := cliflags.ParseTopology(*topology); err != nil {
		fatal(err)
	} else if sel.Kind != "mot" {
		fatal(fmt.Errorf("replay supports only -topology mot; a %s schedule has no CSV format", sel.Kind))
	}
	if *cpuProf != "" {
		stop, err := asyncnoc.StartCPUProfile(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer stop() //nolint:errcheck
	}
	if *memProf != "" {
		defer func() {
			if err := asyncnoc.WriteHeapProfile(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, "replay:", err)
			}
		}()
	}
	spec, err := asyncnoc.NetworkByName(*n, *networkName)
	if err != nil {
		fatal(err)
	}
	sched, err := parseSchedule(*file, *n)
	if err != nil {
		fatal(err)
	}
	k := *shards
	if k == 0 {
		k = asyncnoc.DefaultShards()
	}
	res, err := asyncnoc.RunScheduleShards(spec, sched, asyncnoc.Time(*drain)*asyncnoc.Nanosecond, k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("network:        %s\n", res.Network)
	fmt.Printf("packets:        %d\n", res.MeasuredPackets)
	fmt.Printf("avg latency:    %.2f ns\n", res.AvgLatencyNs)
	fmt.Printf("p95 latency:    %.2f ns\n", res.P95LatencyNs)
	fmt.Printf("completion:     %.1f%%\n", 100*res.Completion)
	fmt.Printf("network power:  %.2f mW\n", res.PowerMW)
}

// parseSchedule reads and validates the CSV workload format against a
// network of n terminals. Every malformed row is reported with its file
// position so truncated or corrupt recordings fail with a usable message
// instead of a downstream panic or a silently empty destination set.
// Destination cells go through the shared validated parser, so duplicate
// destinations in a row are rejected rather than silently deduplicated.
func parseSchedule(path string, n int) (asyncnoc.Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1 // variable destination counts
	rows, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: malformed CSV: %w", path, err)
	}
	var sched asyncnoc.Schedule
	for i, row := range rows {
		if len(row) < 3 {
			return nil, fmt.Errorf("%s:%d: need time_ns,src,dest[,dest...], got %d field(s) (truncated row?)",
				path, i+1, len(row))
		}
		tns, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad time %q: %v", path, i+1, row[0], err)
		}
		if tns < 0 {
			return nil, fmt.Errorf("%s:%d: negative time %v ns", path, i+1, tns)
		}
		src, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad source %q: %v", path, i+1, row[1], err)
		}
		if src < 0 || src >= n {
			return nil, fmt.Errorf("%s:%d: source %d outside [0,%d)", path, i+1, src, n)
		}
		dests, err := asyncnoc.ParseDests(strings.Join(row[2:], ","), n)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, i+1, err)
		}
		sched = append(sched, asyncnoc.Injection{
			At:    asyncnoc.Time(tns * 1000),
			Src:   src,
			Dests: dests,
		})
	}
	if len(sched) == 0 {
		return nil, fmt.Errorf("%s: empty schedule", path)
	}
	return sched, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "replay:", err)
	os.Exit(1)
}
