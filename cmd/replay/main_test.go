package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sched.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseScheduleValid(t *testing.T) {
	path := writeTemp(t, "0.0,2,5\n1.5,0,1,4,6\n")
	sched, err := parseSchedule(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 2 {
		t.Fatalf("got %d injections, want 2", len(sched))
	}
	if sched[0].Src != 2 || !sched[0].Dests.Has(5) {
		t.Errorf("row 1 parsed as %+v", sched[0])
	}
	if sched[1].At != 1500 {
		t.Errorf("row 2 time %v ps, want 1500", sched[1].At)
	}
	if got := sched[1].Dests.Members(); len(got) != 3 {
		t.Errorf("row 2 dests %v, want 3 members", got)
	}
}

func TestParseScheduleRejectsCorruptInput(t *testing.T) {
	cases := []struct {
		name, content, wantErr string
	}{
		{"truncated row", "0.0,2\n", "truncated"},
		{"bad time", "abc,2,5\n", "bad time"},
		{"negative time", "-1,2,5\n", "negative time"},
		{"bad source", "0,x,5\n", "bad source"},
		{"source out of range", "0,8,5\n", "outside [0,8)"},
		{"bad destination", "0,2,5x\n", "bad destination"},
		{"destination out of range", "0,2,64\n", "outside [0,8)"},
		{"empty file", "", "empty schedule"},
		{"unbalanced quotes", "0.0,2,\"5\n", "malformed CSV"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTemp(t, tc.content)
			_, err := parseSchedule(path, 8)
			if err == nil {
				t.Fatalf("parse accepted %q", tc.content)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseScheduleMissingFile(t *testing.T) {
	if _, err := parseSchedule(filepath.Join(t.TempDir(), "nope.csv"), 8); err == nil {
		t.Fatal("expected error for missing file")
	}
}
