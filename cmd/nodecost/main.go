// Command nodecost prints the gate-level cost analysis of the six switch
// designs: area, cell counts, critical paths, and per-design cell
// histograms (Section 5.2(a) plus the breakdown behind it).
package main

import (
	"flag"
	"fmt"
	"os"

	"asyncnoc"
	"asyncnoc/internal/netlist"
)

func main() {
	histograms := flag.Bool("cells", false, "print per-design cell histograms")
	flag.Parse()

	costs, err := asyncnoc.NodeCosts()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nodecost:", err)
		os.Exit(1)
	}
	fmt.Printf("%-28s %6s %10s %8s %12s\n", "node", "cells", "area um^2", "fwd ps", "body-fwd ps")
	for _, c := range costs {
		fmt.Printf("%-28s %6d %10.1f %8d %12d\n", c.Name, c.Cells, c.AreaUm2, c.ForwardPs, c.BodyForwardPs)
	}
	if !*histograms {
		return
	}
	for _, c := range costs {
		nl, err := netlist.Build(c.Name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nodecost:", err)
			os.Exit(1)
		}
		fmt.Printf("\n%s cell histogram:\n", c.Name)
		for _, h := range nl.CellHistogram() {
			fmt.Printf("  %-14s x%d\n", h.Cell, h.Count)
		}
	}
}
