// Command loadsweep prints the classic latency-versus-offered-load curve
// of one or more networks under a benchmark: a saturation search anchors
// each network's load grid, then every grid point is simulated.
//
//	loadsweep -bench Multicast10 -points 8
//
// Simulations run on the parallel experiment engine (-workers, or the
// ASYNCNOC_WORKERS environment variable; default GOMAXPROCS); the curve
// is identical at any pool size.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"asyncnoc"
	"asyncnoc/internal/cliflags"
)

func main() {
	var (
		benchName = flag.String("bench", "UniformRandom", "benchmark name")
		networks  = flag.String("networks", "Baseline,BasicNonSpeculative,OptHybridSpeculative", "comma-separated network names")
		topology  = cliflags.TopologyFlag()
		n         = cliflags.N()
		points    = flag.Int("points", 8, "grid points up to max fraction of saturation")
		maxFrac   = flag.Float64("maxfrac", 0.95, "highest load as a fraction of saturation")
		seed      = flag.Uint64("seed", 7, "random seed")
		workers   = cliflags.Workers("simulation")
		shards    = cliflags.Shards()
		cache     = flag.String("cache-dir", "", "persistent result store directory (shared warm cache)")
		server    = flag.String("server", "", "asyncnocd base URL; runs execute remotely with local fallback")
		httpAddr  = flag.String("http", "", "serve live expvar counters and pprof on this address (e.g. :8090)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	eng := asyncnoc.NewEngine(*workers)
	if *cache != "" {
		st, err := asyncnoc.OpenStore(*cache)
		if err != nil {
			fatal(err)
		}
		defer st.Close() //nolint:errcheck // Close only flushes; errors are counted
		eng.SetStore(st)
		fmt.Fprintf(os.Stderr, "store: persistent cache at %s\n", st.Dir())
	}
	if *server != "" {
		eng.SetRemote(asyncnoc.NewServiceClient(*server).Runner())
		fmt.Fprintf(os.Stderr, "server: submitting runs to %s (local fallback on failure)\n", *server)
	}
	if *cpuProf != "" {
		stop, err := asyncnoc.StartCPUProfile(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer stop() //nolint:errcheck
	}
	if *memProf != "" {
		defer func() {
			if err := asyncnoc.WriteHeapProfile(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, "loadsweep:", err)
			}
		}()
	}
	networkList := strings.Split(*networks, ",")
	progress := asyncnoc.NewSweepProgress(len(networkList))
	if *httpAddr != "" {
		mon, err := asyncnoc.StartMonitor(*httpAddr, eng, progress)
		if err != nil {
			fatal(err)
		}
		defer mon.Close()
		fmt.Fprintf(os.Stderr, "monitor: http://%s/debug/vars\n", mon.Addr())
	}
	sel, err := cliflags.ParseTopology(*topology)
	if err != nil {
		fatal(err)
	}
	if sel.Kind == "mesh" {
		fatal(fmt.Errorf("loadsweep sweeps MoT networks; -topology mesh:%dx%d is not supported", sel.W, sel.H))
	}
	bench, err := sel.Bench(*n, *benchName)
	if err != nil {
		fatal(err)
	}
	base := asyncnoc.RunConfig{
		Bench: bench, Seed: *seed, Shards: *shards,
		Warmup:  200 * asyncnoc.Nanosecond,
		Measure: 1200 * asyncnoc.Nanosecond,
		Drain:   600 * asyncnoc.Nanosecond,
	}
	if base.Shards == 0 {
		base.Shards = asyncnoc.DefaultShards()
	}
	for _, name := range networkList {
		spec, err := asyncnoc.NetworkByName(*n, strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		spec = sel.Compose(spec)
		pts, err := eng.LoadSweep(spec, base, *points, *maxFrac)
		if err != nil {
			fatal(err)
		}
		progress.JobDone()
		fmt.Printf("\n%s / %s\n", spec.Name, bench.Name())
		fmt.Printf("%10s %12s %12s %12s %10s\n", "frac sat", "load GF/s", "latency ns", "thr GF/s", "complete")
		for _, p := range pts {
			fmt.Printf("%10.2f %12.3f %12.2f %12.3f %9.0f%%\n",
				p.FractionOfSat, p.Result.LoadGFs, p.Result.AvgLatencyNs,
				p.Result.ThroughputGFs, 100*p.Result.Completion)
		}
	}
	if snap := eng.Snapshot(); snap.HasStore {
		fmt.Fprintf(os.Stderr, "store: %d hits, %d misses, %d corrupt healed, %d writes (%d errors)\n",
			snap.Store.Hits, snap.Store.Misses, snap.Store.Corrupt,
			snap.Store.Writes, snap.Store.WriteErrors)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadsweep:", err)
	os.Exit(1)
}
