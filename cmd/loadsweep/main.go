// Command loadsweep prints the classic latency-versus-offered-load curve
// of one or more networks under a benchmark: a saturation search anchors
// each network's load grid, then every grid point is simulated.
//
//	loadsweep -bench Multicast10 -points 8
//
// Simulations run on the parallel experiment engine (-workers, or the
// ASYNCNOC_WORKERS environment variable; default GOMAXPROCS); the curve
// is identical at any pool size.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"asyncnoc"
)

func main() {
	var (
		benchName = flag.String("bench", "UniformRandom", "benchmark name")
		networks  = flag.String("networks", "Baseline,BasicNonSpeculative,OptHybridSpeculative", "comma-separated network names")
		n         = flag.Int("n", 8, "MoT radix")
		points    = flag.Int("points", 8, "grid points up to max fraction of saturation")
		maxFrac   = flag.Float64("maxfrac", 0.95, "highest load as a fraction of saturation")
		seed      = flag.Uint64("seed", 7, "random seed")
		workers   = flag.Int("workers", 0, "simulation parallelism (0 = $ASYNCNOC_WORKERS or GOMAXPROCS)")
	)
	flag.Parse()

	eng := asyncnoc.NewEngine(*workers)
	bench, err := asyncnoc.BenchmarkByName(*n, *benchName)
	if err != nil {
		fatal(err)
	}
	base := asyncnoc.RunConfig{
		Bench: bench, Seed: *seed,
		Warmup:  200 * asyncnoc.Nanosecond,
		Measure: 1200 * asyncnoc.Nanosecond,
		Drain:   600 * asyncnoc.Nanosecond,
	}
	for _, name := range strings.Split(*networks, ",") {
		spec, err := asyncnoc.NetworkByName(*n, strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		pts, err := eng.LoadSweep(spec, base, *points, *maxFrac)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s / %s\n", spec.Name, bench.Name())
		fmt.Printf("%10s %12s %12s %12s %10s\n", "frac sat", "load GF/s", "latency ns", "thr GF/s", "complete")
		for _, p := range pts {
			fmt.Printf("%10.2f %12.3f %12.2f %12.3f %9.0f%%\n",
				p.FractionOfSat, p.Result.LoadGFs, p.Result.AvgLatencyNs,
				p.Result.ThroughputGFs, 100*p.Result.Completion)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadsweep:", err)
	os.Exit(1)
}
