// Command motsim runs one simulation of an asynchronous MoT multicast
// network and prints its measurements.
//
// Usage:
//
//	motsim -network OptHybridSpeculative -bench Multicast10 -load 0.4 \
//	       -n 8 -seed 1 -warmup 320 -measure 3200 -drain 800
//
// Loads are offered gigaflits per second per source; windows are in
// nanoseconds. The -topology flag selects the substrate: mot (default)
// runs one MoT die, chiplet:WxH composes a WxH interposer mesh of
// radix -n MoT dies (hierarchical benchmarks only; results carry an
// intra-die versus die-to-die breakout), and mesh:WxH runs the
// synchronous mesh-of-trees reference. With -sat the tool searches for the saturation throughput
// instead of running at a fixed load; the search's probes run through
// the parallel experiment engine with speculative bisection (-workers,
// or the ASYNCNOC_WORKERS environment variable; default GOMAXPROCS) and
// find the same boundary at any pool size.
//
// The -faults flag family enables the deterministic fault-injection
// layer with end-to-end CRC-checked retransmission:
//
//	motsim -network BasicHybridSpeculative -bench Multicast10 \
//	       -load 0.3 -faults 1e-4 -fault-seed 7
//
// reports fault, retransmission, and recovery counters alongside the
// usual measurements. Individual knobs (-fault-corrupt, -fault-drop,
// -fault-jitter, -fault-stuck tree/heap/port@after) select fault classes
// separately; -max-events arms the livelock watchdog explicitly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"asyncnoc"
	"asyncnoc/internal/cliflags"
)

func main() {
	var (
		networkName = flag.String("network", "OptHybridSpeculative", "network architecture (use -list for names)")
		benchName   = flag.String("bench", "UniformRandom", "benchmark (use -list for names)")
		strategy    = flag.String("strategy", "", "multicast routing strategy (use -list for names; empty = the architecture's default)")
		topology    = cliflags.TopologyFlag()
		dests       = cliflags.Dests()
		n           = cliflags.N()
		load        = flag.Float64("load", 0.4, "offered load in GF/s per source")
		seed        = flag.Uint64("seed", 1, "random seed")
		warmup      = flag.Int("warmup", 320, "warmup window (ns)")
		measure     = flag.Int("measure", 3200, "measurement window (ns)")
		drain       = flag.Int("drain", 800, "drain window (ns)")
		sat         = flag.Bool("sat", false, "search for saturation throughput instead of a fixed-load run")
		workers     = cliflags.Workers("saturation-search")
		shards      = cliflags.Shards()
		list        = flag.Bool("list", false, "list network and benchmark names")
		vcdPath     = flag.String("vcd", "", "dump handshake activity to this VCD file")
		util        = flag.Bool("util", false, "print per-level fanout utilization after the run")
		shardStats  = flag.Bool("shard-stats", false, "print the sharded-execution window/barrier counters after the run")
		draw        = flag.Bool("draw", false, "print the fanout-tree placement diagram and exit")
		hist        = flag.Bool("hist", false, "print a latency histogram after the run")
		traceOut    = flag.String("trace-out", "", "stream the flit-lifecycle trace to this JSONL file (with -sat, traces the run at the saturation load)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")

		faults        = flag.Float64("faults", 0, "shorthand: corrupt AND drop rate per channel traversal")
		faultCorrupt  = flag.Float64("fault-corrupt", 0, "payload bit-flip probability per channel traversal")
		faultDrop     = flag.Float64("fault-drop", 0, "body-flit drop probability per channel traversal")
		faultJitter   = flag.Float64("fault-jitter", 0, "handshake-jitter probability per channel traversal")
		faultJitterPs = flag.Int64("fault-jitter-max", 0, "jitter bound in ps (0 = default)")
		faultSeed     = flag.Uint64("fault-seed", 1, "fault-schedule seed (independent of -seed)")
		faultRetries  = flag.Int("fault-retries", 0, "per-packet retransmission budget (0 = default)")
		faultTimeout  = flag.Int64("fault-timeout", 0, "base retransmission timeout in ps (0 = default)")
		faultStuck    = flag.String("fault-stuck", "", "wedge channels: comma-separated tree/heap/port@after entries")
		maxEvents     = flag.Uint64("max-events", 0, "watchdog event budget (0 = automatic for fault runs)")
	)
	flag.Parse()

	sel, err := cliflags.ParseTopology(*topology)
	if err != nil {
		fatal(err)
	}

	if *list {
		fmt.Println("networks:")
		for _, s := range asyncnoc.AllNetworks(8) {
			fmt.Printf("  %s\n", s.Name)
		}
		fmt.Println("benchmarks:")
		for _, b := range asyncnoc.Benchmarks(8) {
			fmt.Printf("  %s\n", b.Name())
		}
		fmt.Println("strategies:")
		for _, name := range asyncnoc.StrategyNames() {
			fmt.Printf("  %s\n", name)
		}
		return
	}

	if *cpuProfile != "" {
		stop, err := asyncnoc.StartCPUProfile(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer stop() //nolint:errcheck
	}
	if *memProfile != "" {
		defer func() {
			if err := asyncnoc.WriteHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "motsim:", err)
			}
		}()
	}

	if sel.Kind == "mesh" {
		if *sat || *util || *hist || *draw || *shardStats || *vcdPath != "" || *traceOut != "" || *dests != "" {
			fatal(fmt.Errorf("-topology mesh:%dx%d supports only plain fixed-load runs", sel.W, sel.H))
		}
		bench, err := sel.Bench(*n, *benchName)
		if err != nil {
			fatal(err)
		}
		res, err := asyncnoc.RunTopology(sel.MeshSpec(), asyncnoc.RunConfig{
			Bench:     bench,
			LoadGFs:   *load,
			Seed:      *seed,
			Warmup:    asyncnoc.Time(*warmup) * asyncnoc.Nanosecond,
			Measure:   asyncnoc.Time(*measure) * asyncnoc.Nanosecond,
			Drain:     asyncnoc.Time(*drain) * asyncnoc.Nanosecond,
			MaxEvents: *maxEvents,
			Shards:    *shards,
		})
		if err != nil {
			fatal(err)
		}
		printResult(res, nil)
		return
	}

	spec, err := asyncnoc.NetworkByName(*n, *networkName)
	if err != nil {
		fatal(err)
	}
	spec = asyncnoc.WithStrategy(spec, *strategy)
	spec = sel.Compose(spec)
	if *faults > 0 {
		spec.Faults.CorruptRate = *faults
		spec.Faults.DropRate = *faults
	}
	if *faultCorrupt > 0 {
		spec.Faults.CorruptRate = *faultCorrupt
	}
	if *faultDrop > 0 {
		spec.Faults.DropRate = *faultDrop
	}
	if *faultJitter > 0 {
		spec.Faults.JitterRate = *faultJitter
	}
	spec.Faults.JitterMaxPs = *faultJitterPs
	spec.Faults.MaxRetries = *faultRetries
	spec.Faults.RetryTimeoutPs = *faultTimeout
	if *faultStuck != "" {
		stuck, err := parseStuck(*faultStuck)
		if err != nil {
			fatal(err)
		}
		spec.Faults.Stuck = stuck
	}
	if spec.Faults.Enabled() {
		spec.Faults.Seed = *faultSeed
	}
	if *draw {
		out, err := asyncnoc.DrawPlacement(spec)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}
	bench, err := sel.Bench(*n, *benchName)
	if err != nil {
		fatal(err)
	}
	if *dests != "" {
		if spec.Chiplet != nil {
			fatal(fmt.Errorf("-dests cannot address a chiplet composition; use a hierarchical -bench"))
		}
		set, err := asyncnoc.ParseDests(*dests, *n)
		if err != nil {
			fatal(err)
		}
		bench = asyncnoc.FixedDests(*n, set)
	}
	cfg := asyncnoc.RunConfig{
		Bench:     bench,
		LoadGFs:   *load,
		Seed:      *seed,
		Warmup:    asyncnoc.Time(*warmup) * asyncnoc.Nanosecond,
		Measure:   asyncnoc.Time(*measure) * asyncnoc.Nanosecond,
		Drain:     asyncnoc.Time(*drain) * asyncnoc.Nanosecond,
		MaxEvents: *maxEvents,
		Shards:    *shards,
	}
	if cfg.Shards == 0 {
		cfg.Shards = asyncnoc.DefaultShards()
	}

	if *sat {
		res, err := asyncnoc.NewEngine(*workers).Saturation(spec, asyncnoc.SatConfig{Base: cfg})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("network:               %s\n", res.Network)
		fmt.Printf("benchmark:             %s\n", res.Benchmark)
		fmt.Printf("saturation load:       %.3f GF/s per source\n", res.SatLoadGFs)
		fmt.Printf("saturation throughput: %.3f GF/s per source (delivered)\n", res.ThroughputGFs)
		fmt.Printf("zero-load latency:     %.2f ns\n", res.ZeroLoadLatencyNs)
		fmt.Printf("latency at saturation: %.2f ns\n", res.AtSaturation.AvgLatencyNs)
		if *traceOut != "" {
			// Trace one deterministic run at the saturation load: the
			// engine finds the same load at any pool size, so the trace is
			// byte-identical across -workers values.
			tcfg := cfg
			tcfg.LoadGFs = res.SatLoadGFs
			if _, err := runInstrumented(spec, tcfg, *traceOut, false, false, ""); err != nil {
				fatal(err)
			}
			fmt.Printf("trace written:         %s\n", *traceOut)
		}
		return
	}

	var ssIns *asyncnoc.ShardStatsInstrument
	if *shardStats {
		ssIns = &asyncnoc.ShardStatsInstrument{Timing: true}
		cfg.Instruments = append(cfg.Instruments, ssIns)
	}
	var res asyncnoc.RunResult
	if *util || *hist || *vcdPath != "" || *traceOut != "" {
		r, err := runInstrumented(spec, cfg, *traceOut, *util, *hist, *vcdPath)
		if err != nil {
			fatal(err)
		}
		res = r
		if *vcdPath != "" {
			fmt.Printf("vcd written:      %s\n", *vcdPath)
		}
		if *traceOut != "" {
			fmt.Printf("trace written:    %s\n", *traceOut)
		}
	} else {
		r, err := asyncnoc.Run(spec, cfg)
		if err != nil {
			fatal(err)
		}
		res = r
	}
	printResult(res, &spec)
	if ssIns != nil {
		printShardStats(ssIns)
	}
}

// printShardStats prints the sharded-execution diagnostics captured by
// the -shard-stats instrument.
func printShardStats(ins *asyncnoc.ShardStatsInstrument) {
	s, shards, parallel := ins.Stats()
	if s.Barriers == 0 {
		fmt.Printf("shard stats:      serial run (no shard group; use -shards)\n")
		return
	}
	exec := "inline"
	if parallel {
		exec = "parallel"
	}
	fmt.Printf("shard stats:      shards=%d exec=%s barriers=%d windows=%d extended=%d coalesced=%d\n",
		shards, exec, s.Barriers, s.Windows, s.ExtendedWindows, s.CoalescedReplays)
	fmt.Printf("                  merged=%d mailbox=%d held=%d barrier-time=%.3fs\n",
		s.MergedDispatches, s.MailboxEvents, s.HeldMail, float64(s.BarrierNs)/1e9)
}

// printResult prints the standard measurement block, the hierarchy
// breakout for chiplet compositions, and the fault counters for fault
// runs. spec is nil for topologies without a NetworkSpec (mesh).
func printResult(res asyncnoc.RunResult, spec *asyncnoc.NetworkSpec) {
	fmt.Printf("network:          %s\n", res.Network)
	fmt.Printf("benchmark:        %s\n", res.Benchmark)
	fmt.Printf("offered load:     %.3f GF/s per source\n", res.LoadGFs)
	fmt.Printf("avg latency:      %.2f ns\n", res.AvgLatencyNs)
	fmt.Printf("p50 latency:      %.2f ns\n", res.P50LatencyNs)
	fmt.Printf("p95 latency:      %.2f ns\n", res.P95LatencyNs)
	fmt.Printf("p99 latency:      %.2f ns\n", res.P99LatencyNs)
	fmt.Printf("throughput:       %.3f GF/s per source (delivered)\n", res.ThroughputGFs)
	fmt.Printf("network power:    %.2f mW\n", res.PowerMW)
	fmt.Printf("completion:       %.1f%% of %d measured packets\n", 100*res.Completion, res.MeasuredPackets)
	if spec == nil {
		return
	}
	if spec.Chiplet != nil {
		fmt.Printf("intra-die:        %d packets, avg %.2f ns, p95 %.2f ns\n",
			res.MeasuredPackets-res.D2DMeasuredPackets, res.AvgIntraLatencyNs, res.P95IntraLatencyNs)
		fmt.Printf("die-to-die:       %d packets, avg %.2f ns, p95 %.2f ns\n",
			res.D2DMeasuredPackets, res.AvgD2DLatencyNs, res.P95D2DLatencyNs)
		fmt.Printf("d2d throughput:   %.3f GF/s per source (delivered)\n", res.D2DThroughputGFs)
		fmt.Printf("d2d link power:   %.2f mW over %d flit-hops\n", res.D2DPowerMW, res.D2DFlitHops)
	}
	if spec.Faults.Enabled() {
		fmt.Printf("faults injected:  %d\n", res.FaultsInjected)
		fmt.Printf("retransmissions:  %d\n", res.Retries)
		fmt.Printf("recovered flits:  %d\n", res.RecoveredFlits)
		fmt.Printf("lost flits:       %d (%d packet(s) written off)\n", res.LostFlits, res.LostPackets)
	}
}

// latencyCapture is a minimal instrument that holds onto the built
// network so the latency histogram can be read after the run.
type latencyCapture struct{ nw *asyncnoc.Network }

func (c *latencyCapture) Attach(nw *asyncnoc.Network) error { c.nw = nw; return nil }
func (c *latencyCapture) Finish() error                     { return nil }

// runInstrumented executes one run with the requested instruments riding
// along in RunConfig.Instruments: a JSONL trace sink, per-level
// utilization counters, a latency histogram, and/or a VCD dump.
func runInstrumented(spec asyncnoc.NetworkSpec, cfg asyncnoc.RunConfig, tracePath string, util, hist bool, vcdPath string) (asyncnoc.RunResult, error) {
	var uIns *asyncnoc.UtilizationInstrument
	if util {
		uIns = &asyncnoc.UtilizationInstrument{}
		cfg.Instruments = append(cfg.Instruments, uIns)
	}
	var traceFile *os.File
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return asyncnoc.RunResult{}, err
		}
		traceFile = f
		cfg.Instruments = append(cfg.Instruments, &asyncnoc.TraceInstrument{Out: f})
	}
	var vcdFile *os.File
	if vcdPath != "" {
		f, err := os.Create(vcdPath)
		if err != nil {
			return asyncnoc.RunResult{}, err
		}
		vcdFile = f
		cfg.Instruments = append(cfg.Instruments, &asyncnoc.VCDInstrument{Out: f})
	}
	var cap *latencyCapture
	if hist {
		cap = &latencyCapture{}
		cfg.Instruments = append(cfg.Instruments, cap)
	}
	res, err := asyncnoc.Run(spec, cfg)
	if err != nil {
		return asyncnoc.RunResult{}, err
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			return asyncnoc.RunResult{}, err
		}
	}
	if vcdFile != nil {
		if err := vcdFile.Close(); err != nil {
			return asyncnoc.RunResult{}, err
		}
	}
	if uIns != nil {
		fmt.Print(uIns.U.String())
	}
	if cap != nil {
		if samples := cap.nw.Rec.LatenciesNs(); len(samples) > 0 {
			fmt.Println("latency histogram (ns):")
			fmt.Print(asyncnoc.FormatLatencyHistogram(samples, 12, 40))
		}
	}
	return res, nil
}

// parseStuck parses the -fault-stuck syntax: comma-separated
// tree/heap/port@after entries, e.g. "0/2/0@3,1/1/1@0".
func parseStuck(s string) ([]asyncnoc.StuckChannel, error) {
	var out []asyncnoc.StuckChannel
	for _, entry := range strings.Split(s, ",") {
		var st asyncnoc.StuckChannel
		if _, err := fmt.Sscanf(entry, "%d/%d/%d@%d", &st.Tree, &st.Heap, &st.Port, &st.After); err != nil {
			return nil, fmt.Errorf("bad -fault-stuck entry %q (want tree/heap/port@after): %v", entry, err)
		}
		out = append(out, st)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "motsim:", err)
	os.Exit(1)
}
