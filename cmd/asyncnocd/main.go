// Command asyncnocd serves the simulation-as-a-service API: an
// HTTP/JSON front end over the parallel experiment engine and the
// crash-safe persistent result store.
//
//	asyncnocd -addr :8080 -cache-dir /var/cache/asyncnoc
//
// Endpoints:
//
//	POST /v1/run        submit one simulation (RunRequest JSON)
//	POST /v1/sweep      submit one latency-vs-load sweep
//	GET  /v1/jobs/{key} fetch a stored result by job key
//	GET  /healthz       liveness (200 while the process runs)
//	GET  /readyz        readiness (503 while draining or overloaded)
//	GET  /debug/vars    expvar counters (engine memo, store health, admission)
//
// Robustness: at most -max-queue jobs are admitted at once (the rest
// are shed with 429 + Retry-After); every job runs under -request-timeout
// and is canceled mid-simulation when it expires; SIGINT/SIGTERM stops
// admission, drains in-flight jobs for up to -drain-timeout, flushes
// the store, and exits 0.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asyncnoc/internal/core"
	"asyncnoc/internal/obs"
	"asyncnoc/internal/service"
	"asyncnoc/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cacheDir   = flag.String("cache-dir", "", "persistent result store directory (empty = memo only)")
		cacheMax   = flag.Int64("cache-max-bytes", 0, "cache size budget; least-recently-accessed entries are evicted beyond it (0 = unbounded)")
		workers    = flag.Int("workers", 0, "simulation parallelism (0 = $ASYNCNOC_WORKERS or GOMAXPROCS)")
		maxQueue   = flag.Int("max-queue", service.DefaultMaxQueue, "admitted-job bound; arrivals beyond it are shed with 429")
		reqTimeout = flag.Duration("request-timeout", service.DefaultRequestTimeout, "per-request deadline")
		drainTime  = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain deadline")
		memoCap    = flag.Int("memo-cap", core.DefaultMemoCapacity, "in-memory memo capacity (entries)")
	)
	flag.Parse()

	eng := core.NewEngine(*workers)
	eng.SetMemoCapacity(*memoCap)
	var st *store.Store
	if *cacheDir != "" {
		var err error
		st, err = store.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
		eng.SetStore(st)
		if *cacheMax > 0 {
			// The startup sweep trims a cache left oversized by an earlier
			// run (or a larger budget) before any job is admitted.
			st.SetMaxBytes(*cacheMax)
			fmt.Fprintf(os.Stderr, "asyncnocd: persistent store at %s (budget %d bytes, %d evicted on startup)\n",
				st.Dir(), *cacheMax, st.Stats().Evictions)
		} else {
			fmt.Fprintf(os.Stderr, "asyncnocd: persistent store at %s\n", st.Dir())
		}
	}

	srv := service.NewServer(eng, eng.Store())
	srv.MaxQueue = *maxQueue
	srv.RequestTimeout = *reqTimeout

	obs.PublishVars(eng, nil)
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	expvar.Publish("asyncnoc.server", expvar.Func(func() any {
		snap := srv.Snapshot()
		return map[string]any{
			"queued": snap.Queued, "queue_cap": snap.QueueCap,
			"admitted": snap.Admitted, "done": snap.Done,
			"shed": snap.Shed, "refused": snap.Refused,
			"timeouts": snap.Timeouts, "sim_errors": snap.SimErrors,
			"draining": snap.Draining,
		}
	}))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	// Print the bound address (not the flag): with -addr :0 the kernel
	// picks the port, and scripts parse this line to find it.
	fmt.Fprintf(os.Stderr, "asyncnocd: serving on %s (workers=%d, max-queue=%d)\n",
		ln.Addr(), eng.Workers(), *maxQueue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "asyncnocd: %s: draining (up to %s)\n", s, *drainTime)
	}

	// Graceful shutdown: stop admitting (readyz flips to 503, new jobs
	// are refused), let admitted jobs finish under the drain deadline,
	// then flush the store so every computed result is durable.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTime)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "asyncnocd: drain deadline expired: %v\n", err)
	}
	if st != nil {
		if err := st.Close(); err != nil {
			fatal(err)
		}
		stats := st.Stats()
		fmt.Fprintf(os.Stderr, "asyncnocd: store flushed (%d writes, %d hits, %d misses, %d corrupt healed, %d evicted)\n",
			stats.Writes, stats.Hits, stats.Misses, stats.Corrupt, stats.Evictions)
	}
	snap := srv.Snapshot()
	fmt.Fprintf(os.Stderr, "asyncnocd: clean drain: %d jobs done, %d shed, %d refused while draining\n",
		snap.Done, snap.Shed, snap.Refused)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asyncnocd:", err)
	os.Exit(1)
}
