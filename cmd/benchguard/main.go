// Command benchguard gates benchmark regressions against a checked-in
// baseline. It parses `go test -bench -benchmem` output (files given as
// arguments, or stdin) and compares every benchmark that appears in the
// baseline:
//
//   - wall clock: ns/op above baseline by more than -tolerance fails;
//   - allocations: a zero-alloc baseline fails on any allocation at all
//     (the kernel's steady-state guarantee), a non-zero baseline fails
//     above -alloc-tolerance (absorbing runtime noise in end-to-end runs).
//
// Multiple samples of one benchmark are averaged. Benchmarks missing from
// the input are reported but do not fail the gate, so partial runs can be
// checked; an input matching nothing fails. -update rewrites the baseline
// with the observed numbers instead of checking.
//
// Two auxiliary modes:
//
//   - -speedup-num/-speedup-den/-speedup-min replace the baseline compare
//     with a ratio gate: speedup = num ns/op divided by den ns/op must be
//     at least -speedup-min (e.g. serial over sharded for the multi-core
//     shard gate). The baseline file is not read in this mode.
//   - -json PATH additionally writes the observed numbers (and the
//     speedup ratio, when computed) as machine-readable JSON, in either
//     mode, pass or fail.
//
// -print-numcpu prints runtime.NumCPU() and exits, so shell gates can
// decide whether a parallel speedup measurement is even meaningful
// before burning minutes on benchmarks.
//
// Machines differ, so the committed baseline is a ratchet for one
// reference machine (CI); after a legitimate improvement, refresh it with:
//
//	make bench-smoke BENCHGUARD_FLAGS=-update
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// Entry is one benchmark's baseline numbers.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the checked-in gate file. PrePRReference preserves
// historical numbers for documentation; it is never checked against.
type Baseline struct {
	Note           string           `json:"note,omitempty"`
	Benchmarks     map[string]Entry `json:"benchmarks"`
	PrePRReference map[string]Entry `json:"pre_pr_reference,omitempty"`
}

// sample accumulates observed runs of one benchmark.
type sample struct {
	ns, allocs float64
	count      int
}

// benchLine matches one result line; the -N GOMAXPROCS suffix is folded
// into the name match so baselines are machine-width independent.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(?:\s+[0-9.e+]+ B/op\s+([0-9.e+]+) allocs/op)?`)

func main() {
	baselinePath := flag.String("baseline", "bench/baseline.json", "baseline JSON path")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative ns/op regression")
	allocTol := flag.Float64("alloc-tolerance", 0.01, "allowed relative allocs/op regression (non-zero baselines)")
	update := flag.Bool("update", false, "rewrite the baseline with observed numbers instead of checking")
	jsonPath := flag.String("json", "", "also write observed numbers (and speedup, if computed) as JSON to this path")
	speedupNum := flag.String("speedup-num", "", "speedup mode: benchmark name for the ratio numerator (e.g. the serial run)")
	speedupDen := flag.String("speedup-den", "", "speedup mode: benchmark name for the ratio denominator (e.g. the sharded run)")
	speedupMin := flag.Float64("speedup-min", 0, "speedup mode: fail when num/den ns/op is below this ratio")
	printNumCPU := flag.Bool("print-numcpu", false, "print runtime.NumCPU() and exit")
	flag.Parse()

	if *printNumCPU {
		fmt.Println(runtime.NumCPU())
		return
	}

	samples, err := parseInputs(flag.Args())
	if err != nil {
		fatal(err)
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("no benchmark results found in input"))
	}

	if (*speedupNum == "") != (*speedupDen == "") {
		fatal(fmt.Errorf("-speedup-num and -speedup-den must be given together"))
	}
	if *speedupNum != "" {
		speedup, err := speedupRatio(samples, *speedupNum, *speedupDen)
		if err != nil {
			fatal(err)
		}
		if err := writeJSON(*jsonPath, samples, speedup); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: speedup %s / %s = %.2fx (gate >= %.2fx, GOMAXPROCS %d, NumCPU %d)\n",
			*speedupNum, *speedupDen, speedup, *speedupMin, runtime.GOMAXPROCS(0), runtime.NumCPU())
		if speedup < *speedupMin {
			fatal(fmt.Errorf("speedup %.2fx below the %.2fx gate", speedup, *speedupMin))
		}
		return
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	if *update {
		printDeltaTable(base, samples, *tolerance, *allocTol)
		if err := writeBaseline(*baselinePath, base, samples); err != nil {
			fatal(err)
		}
		if err := writeJSON(*jsonPath, samples, 0); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: baseline %s updated with %d benchmarks\n", *baselinePath, len(samples))
		return
	}

	checked, failed := printDeltaTable(base, samples, *tolerance, *allocTol)
	if err := writeJSON(*jsonPath, samples, 0); err != nil {
		fatal(err)
	}
	if checked == 0 {
		fatal(fmt.Errorf("no input benchmark matched the baseline"))
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d benchmark(s) regressed", failed))
	}
}

// speedupRatio computes numerator ns/op over denominator ns/op from the
// parsed samples (averaged per benchmark, like the baseline compare).
func speedupRatio(samples map[string]*sample, num, den string) (float64, error) {
	n, ok := samples[num]
	if !ok {
		return 0, fmt.Errorf("speedup numerator %s not found in input", num)
	}
	d, ok := samples[den]
	if !ok {
		return 0, fmt.Errorf("speedup denominator %s not found in input", den)
	}
	dns := d.ns / float64(d.count)
	if dns <= 0 {
		return 0, fmt.Errorf("speedup denominator %s has non-positive ns/op", den)
	}
	return (n.ns / float64(n.count)) / dns, nil
}

// writeJSON emits the observed numbers machine-readably; path=="" is a
// no-op so callers can pass the flag through unconditionally.
func writeJSON(path string, samples map[string]*sample, speedup float64) error {
	if path == "" {
		return nil
	}
	type obs struct {
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	}
	out := struct {
		NumCPU     int            `json:"num_cpu"`
		GoMaxProcs int            `json:"gomaxprocs"`
		Benchmarks map[string]obs `json:"benchmarks"`
		Speedup    float64        `json:"speedup,omitempty"`
	}{
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: make(map[string]obs, len(samples)),
		Speedup:    speedup,
	}
	for name, s := range samples {
		out.Benchmarks[name] = obs{
			NsPerOp:     s.ns / float64(s.count),
			AllocsPerOp: s.allocs / float64(s.count),
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// printDeltaTable reports every baseline benchmark as one row — old vs
// observed vs the gate threshold, for both ns/op and allocs/op — and
// returns how many were checked and how many regressed. It prints on
// pass, fail, and update alike, so improvements are as visible as
// regressions.
func printDeltaTable(base *Baseline, samples map[string]*sample, tolerance, allocTol float64) (checked, failed int) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("benchguard: %-38s %32s  %32s  %s\n", "benchmark",
		"ns/op old -> new (limit)", "allocs/op old -> new (limit)", "status")
	for _, name := range names {
		want := base.Benchmarks[name]
		s, ok := samples[name]
		if !ok {
			fmt.Printf("benchguard: %-38s not in input (skipped)\n", name)
			continue
		}
		checked++
		ns := s.ns / float64(s.count)
		allocs := s.allocs / float64(s.count)
		nsLimit := want.NsPerOp * (1 + tolerance)
		// A zero-alloc baseline is exact: any allocation at all fails.
		allocLimit := want.AllocsPerOp * (1 + allocTol)
		status := "ok"
		switch {
		case ns > nsLimit:
			status = "FAIL wall clock"
			failed++
		case want.AllocsPerOp == 0 && allocs > 0:
			status = "FAIL allocs (baseline is zero-alloc)"
			failed++
		case want.AllocsPerOp > 0 && allocs > allocLimit:
			status = "FAIL allocs"
			failed++
		}
		fmt.Printf("benchguard: %-38s %32s  %32s  %s\n", name,
			deltaCell(want.NsPerOp, ns, nsLimit),
			deltaCell(want.AllocsPerOp, allocs, allocLimit),
			status)
	}
	return checked, failed
}

// deltaCell renders "old -> new (limit) +x%" for one metric.
func deltaCell(old, got, limit float64) string {
	cell := fmt.Sprintf("%.4g -> %.4g (%.4g)", old, got, limit)
	if old > 0 {
		cell += fmt.Sprintf(" %+.1f%%", (got-old)/old*100)
	}
	return cell
}

func parseInputs(paths []string) (map[string]*sample, error) {
	samples := make(map[string]*sample)
	scan := func(r io.Reader) error {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			m := benchLine.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			var allocs float64
			if m[3] != "" {
				allocs, _ = strconv.ParseFloat(m[3], 64)
			}
			s := samples[m[1]]
			if s == nil {
				s = &sample{}
				samples[m[1]] = s
			}
			s.ns += ns
			s.allocs += allocs
			s.count++
		}
		return sc.Err()
	}
	if len(paths) == 0 {
		return samples, scan(os.Stdin)
	}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		err = scan(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return samples, nil
}

func readBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Benchmarks: map[string]Entry{}}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Benchmarks == nil {
		b.Benchmarks = map[string]Entry{}
	}
	return &b, nil
}

func writeBaseline(path string, base *Baseline, samples map[string]*sample) error {
	for name, s := range samples {
		base.Benchmarks[name] = Entry{
			NsPerOp:     s.ns / float64(s.count),
			AllocsPerOp: s.allocs / float64(s.count),
		}
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
